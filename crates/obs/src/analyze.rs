//! Trace analytics: critical path, rank imbalance, communication matrix
//! and scaling efficiency over a finished [`Trace`].
//!
//! The paper's argument is a scaling story: hybrid stages whose wall-clock
//! is bound by the slowest rank plus the serial remainder. The obs layer
//! records what happened; this module computes *what bound the run*:
//!
//! * [`Analysis::critical_path`] — the longest chain of spans through the stage
//!   barriers. Pipeline stages (`cat:"stage"` spans on track 0) are
//!   serialized, so every stage is on the path; inside each stage the
//!   chain descends into the straggler lane (the rank track with the most
//!   busy time in the stage window) and then down the deepest-duration
//!   child at every nesting level. Each [`PathStep`] carries its exclusive
//!   `contribution` (steps sum exactly to the stage total) and its
//!   `slack` — the largest reduction of total runtime obtainable by
//!   shrinking *only* that span (capped, at the rank-selection point, by
//!   the gap to the runner-up rank: past that the runner-up becomes the
//!   straggler and further shrinking is invisible).
//! * [`Analysis::stages`] — per-stage load-imbalance: per-lane busy time,
//!   max/mean ratio, idle fraction and the straggler lane.
//! * [`Analysis::comm`] — bytes and virtual time per collective per lane,
//!   read off the `mpi.*` `cat:"comm"` spans and their `bytes*` args.
//! * [`Analysis::scaling`] — speedup/efficiency (and the Karp–Flatt serial
//!   fraction) against a serial-baseline total, when one is supplied.
//!
//! Every ratio is guarded for degenerate traces (empty, zero-duration,
//! single lane): the analysis of *any* trace is finite — no NaN ever
//! reaches the JSON artifact ([`analysis_json`] / [`parse_analysis`]).

use crate::span::{SpanNode, SpanRecord, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tracks in `(0, THREAD_TRACK_BASE)` are parallel rank lanes (the
/// pipeline splices rank `r` at track `1 + r`); track 0 is the serial
/// pipeline lane and tracks at or above [`crate::THREAD_TRACK_BASE`] are
/// OpenMP thread lanes, which the analyzer ignores (their busy/idle pairs
/// are already summarized by the makespan metrics).
pub const RANK_LANE_BASE: u32 = 1;

/// One step of the critical path (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Track the span lives on (0 = pipeline lane, `1 + r` = rank `r`).
    pub track: u32,
    /// Span start, clipped to the owning stage window, seconds.
    pub start: f64,
    /// Span end, clipped to the owning stage window, seconds.
    pub end: f64,
    /// Time attributed exclusively to this step (its clipped duration
    /// minus the clipped duration of the chain's next, nested step). Steps
    /// sum to the total stage time.
    pub contribution: f64,
    /// Largest total-runtime reduction obtainable by shrinking only this
    /// span, seconds.
    pub slack: f64,
}

/// Load-imbalance statistics for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (`"GraphFromFasta"`, …).
    pub name: String,
    /// Stage start on the pipeline timeline, seconds.
    pub start: f64,
    /// Stage end, seconds.
    pub end: f64,
    /// Busy time per active rank lane: `(track, seconds)`, track order.
    pub lane_busy: Vec<(u32, f64)>,
    /// Max lane busy time, seconds (0 for serial stages with no lanes).
    pub max_busy: f64,
    /// Mean lane busy time, seconds.
    pub mean_busy: f64,
    /// `max_busy / mean_busy`; 1.0 when there is nothing to compare.
    pub imbalance: f64,
    /// `1 - mean_busy / max_busy`: the fraction of the stage's rank-time
    /// budget lost to waiting on the straggler. 0.0 when degenerate.
    pub idle_frac: f64,
    /// Track of the straggler (the lane with `max_busy`), if any lane was
    /// active in the stage window.
    pub straggler: Option<u32>,
}

impl StageStats {
    /// Stage duration, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One cell of the communication matrix: a collective op on one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCell {
    /// Collective name (`"mpi.allgatherv"`, …).
    pub op: String,
    /// Lane (track) the calls were recorded on.
    pub track: u32,
    /// Number of calls.
    pub calls: u64,
    /// Payload bytes sent (sum of `bytes_sent`, falling back to `bytes`).
    pub bytes: f64,
    /// Virtual time spent inside the collective, seconds.
    pub time: f64,
}

/// Scaling-efficiency figures against a serial baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaling {
    /// Serial-baseline total, seconds.
    pub baseline_total: f64,
    /// This run's total, seconds.
    pub total: f64,
    /// Parallel lanes (ranks) this run used.
    pub ranks: usize,
    /// `baseline_total / total` (0 when total is 0).
    pub speedup: f64,
    /// `speedup / ranks`.
    pub efficiency: f64,
    /// Karp–Flatt experimentally determined serial fraction
    /// `(1/speedup - 1/ranks) / (1 - 1/ranks)`; `None` for 1 rank or a
    /// degenerate speedup.
    pub serial_fraction: Option<f64>,
}

/// Everything [`analyze`] computes from one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    /// Total analyzed time: sum of stage durations (equals the trace
    /// horizon for barrier-serialized pipelines), seconds.
    pub total: f64,
    /// The cross-rank critical path, timeline order.
    pub critical_path: Vec<PathStep>,
    /// Per-stage imbalance statistics, timeline order.
    pub stages: Vec<StageStats>,
    /// Communication matrix, sorted by (op, track).
    pub comm: Vec<CommCell>,
    /// Scaling figures, when a serial baseline total was supplied.
    pub scaling: Option<Scaling>,
}

impl Analysis {
    /// Sum of critical-path contributions — by construction equal to
    /// [`Analysis::total`] (up to float rounding).
    pub fn path_total(&self) -> f64 {
        self.critical_path.iter().map(|s| s.contribution).sum()
    }
}

/// Duration of `span` clipped to the window `[lo, hi)`.
fn clip(start: f64, end: f64, lo: f64, hi: f64) -> f64 {
    (end.min(hi) - start.max(lo)).max(0.0)
}

/// The stage spans the analysis is anchored on: `cat == "stage"` spans on
/// track 0, timeline order. Falls back to the root spans of track 0's
/// nesting tree when nothing is categorized (hand-built traces), so the
/// analyzer still produces a path.
fn anchor_stages(trace: &Trace) -> Vec<SpanRecord> {
    let mut stages: Vec<SpanRecord> = trace
        .with_cat("stage")
        .into_iter()
        .filter(|s| s.track == 0)
        .cloned()
        .collect();
    if stages.is_empty() {
        stages = trace
            .tree(0)
            .into_iter()
            .map(|n| SpanRecord {
                name: n.name,
                cat: "stage".to_string(),
                track: 0,
                start: n.start,
                end: n.end,
                args: Vec::new(),
            })
            .collect();
    }
    stages.sort_by(|a, b| a.start.total_cmp(&b.start));
    stages
}

/// Rank lanes with at least one span: every track in
/// `(0, THREAD_TRACK_BASE)`.
fn rank_lanes(trace: &Trace) -> Vec<u32> {
    let mut lanes: Vec<u32> = trace
        .spans
        .iter()
        .map(|s| s.track)
        .filter(|&t| t > 0 && t < crate::THREAD_TRACK_BASE)
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    lanes
}

/// Busy time of `lane` inside `[lo, hi)`: the clipped durations of the
/// lane's *root* spans (nested children are already covered by their
/// parents, so roots alone avoid double counting).
fn lane_busy(roots: &[SpanNode], lo: f64, hi: f64) -> f64 {
    roots.iter().map(|n| clip(n.start, n.end, lo, hi)).sum()
}

/// Pick the chain child: maximum clipped duration, ties broken by earlier
/// start, then lexicographic name (deterministic on hand-built ties).
fn chain_child(nodes: &[SpanNode], lo: f64, hi: f64) -> Option<&SpanNode> {
    nodes
        .iter()
        .filter(|n| clip(n.start, n.end, lo, hi) > 0.0)
        .max_by(|a, b| {
            clip(a.start, a.end, lo, hi)
                .total_cmp(&clip(b.start, b.end, lo, hi))
                .then(b.start.total_cmp(&a.start))
                .then_with(|| b.name.cmp(&a.name))
        })
}

/// Descend the chain from `nodes` within `[lo, hi)`, pushing one step per
/// nesting level. Returns the clipped duration of the chain's head (what
/// the caller must subtract from its own contribution).
fn descend(
    nodes: &[SpanNode],
    track: u32,
    lo: f64,
    hi: f64,
    parent_slack: f64,
    steps: &mut Vec<PathStep>,
) -> f64 {
    let Some(head) = chain_child(nodes, lo, hi) else {
        return 0.0;
    };
    let dur = clip(head.start, head.end, lo, hi);
    let slack = parent_slack.min(dur);
    let idx = steps.len();
    steps.push(PathStep {
        name: head.name.clone(),
        track,
        start: head.start.max(lo),
        end: head.end.min(hi),
        contribution: dur,
        slack,
    });
    let child_dur = descend(&head.children, track, lo, hi, slack, steps);
    steps[idx].contribution = (dur - child_dur).max(0.0);
    dur
}

/// Compute the full [`Analysis`] of a trace (no scaling section).
pub fn analyze(trace: &Trace) -> Analysis {
    analyze_vs(trace, None)
}

/// Compute the [`Analysis`] of a trace; with `baseline_total` (a serial
/// run's total, seconds) the scaling section is filled in too.
pub fn analyze_vs(trace: &Trace, baseline_total: Option<f64>) -> Analysis {
    let stages = anchor_stages(trace);
    let lanes = rank_lanes(trace);
    let lane_trees: BTreeMap<u32, Vec<SpanNode>> =
        lanes.iter().map(|&t| (t, trace.tree(t))).collect();

    let mut critical_path = Vec::new();
    let mut stage_stats = Vec::new();
    for s in &stages {
        let (lo, hi) = (s.start, s.end);
        let dur = (hi - lo).max(0.0);
        // Per-lane busy time inside the stage window.
        let busy: Vec<(u32, f64)> = lanes
            .iter()
            .map(|&t| (t, lane_busy(&lane_trees[&t], lo, hi)))
            .filter(|&(_, b)| b > 0.0)
            .collect();
        let max_busy = busy.iter().map(|&(_, b)| b).fold(0.0, f64::max);
        let mean_busy = if busy.is_empty() {
            0.0
        } else {
            busy.iter().map(|&(_, b)| b).sum::<f64>() / busy.len() as f64
        };
        let straggler = busy
            .iter()
            .filter(|&&(_, b)| b == max_busy && max_busy > 0.0)
            .map(|&(t, _)| t)
            .next();
        // Runner-up lane busy time: bounds how much fixing the straggler
        // alone can help.
        let runner_up = straggler
            .map(|st| {
                busy.iter()
                    .filter(|&&(t, _)| t != st)
                    .map(|&(_, b)| b)
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);

        stage_stats.push(StageStats {
            name: s.name.clone(),
            start: lo,
            end: hi,
            lane_busy: busy,
            max_busy,
            mean_busy,
            imbalance: if mean_busy > 0.0 {
                max_busy / mean_busy
            } else {
                1.0
            },
            idle_frac: if max_busy > 0.0 {
                (1.0 - mean_busy / max_busy).max(0.0)
            } else {
                0.0
            },
            straggler,
        });

        // Stage step + descent into the straggler lane's chain.
        let idx = critical_path.len();
        critical_path.push(PathStep {
            name: s.name.clone(),
            track: 0,
            start: lo,
            end: hi,
            contribution: dur,
            slack: dur,
        });
        if let Some(st) = straggler {
            // Shrinking the straggler's chain stops helping once the
            // runner-up rank binds the stage.
            let lane_slack = (max_busy - runner_up).max(0.0).min(dur);
            let chain_dur = descend(&lane_trees[&st], st, lo, hi, lane_slack, &mut critical_path);
            critical_path[idx].contribution = (dur - chain_dur).max(0.0);
        }
    }

    // Communication matrix: `mpi.*` comm spans grouped by (op, lane).
    let mut comm_map: BTreeMap<(String, u32), CommCell> = BTreeMap::new();
    for s in &trace.spans {
        if s.cat != "comm" || !s.name.starts_with("mpi.") {
            continue;
        }
        let cell = comm_map
            .entry((s.name.clone(), s.track))
            .or_insert_with(|| CommCell {
                op: s.name.clone(),
                track: s.track,
                calls: 0,
                bytes: 0.0,
                time: 0.0,
            });
        cell.calls += 1;
        cell.bytes += s
            .arg("bytes_sent")
            .or_else(|| s.arg("bytes"))
            .unwrap_or(0.0);
        cell.time += s.duration();
    }

    let total: f64 = stage_stats.iter().map(StageStats::duration).sum();
    let scaling = baseline_total.map(|base| {
        let ranks = lanes.len().max(1);
        let speedup = if total > 0.0 { base / total } else { 0.0 };
        let serial_fraction = (ranks > 1 && speedup > 0.0).then(|| {
            let p = ranks as f64;
            ((1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)).max(0.0)
        });
        Scaling {
            baseline_total: base,
            total,
            ranks,
            speedup,
            efficiency: speedup / lanes.len().max(1) as f64,
            serial_fraction,
        }
    });

    Analysis {
        total,
        critical_path,
        stages: stage_stats,
        comm: comm_map.into_values().collect(),
        scaling,
    }
}

// ---- JSON round trip ----------------------------------------------------

/// Schema tag written into every analysis artifact.
pub const ANALYSIS_SCHEMA: &str = "trinity-analysis/v1";

/// Export an [`Analysis`] as a self-describing JSON artifact
/// (`analysis.json`). Round-trips through [`parse_analysis`].
pub fn analysis_json(a: &Analysis) -> String {
    let esc = crate::export::esc;
    let num = crate::export::num;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n\"schema\":\"{ANALYSIS_SCHEMA}\",\n\"total_s\":{},\n\"critical_path\":[\n",
        num(a.total)
    );
    for (i, s) in a.critical_path.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"name\":\"{}\",\"track\":{},\"start\":{},\"end\":{},\
             \"contribution_s\":{},\"slack_s\":{}}}",
            if i > 0 { ",\n" } else { "" },
            esc(&s.name),
            s.track,
            num(s.start),
            num(s.end),
            num(s.contribution),
            num(s.slack),
        );
    }
    out.push_str("\n],\n\"stages\":[\n");
    for (i, s) in a.stages.iter().enumerate() {
        let mut lanes = String::new();
        for (j, &(t, b)) in s.lane_busy.iter().enumerate() {
            let _ = write!(lanes, "{}[{t},{}]", if j > 0 { "," } else { "" }, num(b));
        }
        let _ = write!(
            out,
            "{}{{\"name\":\"{}\",\"start\":{},\"end\":{},\"duration_s\":{},\
             \"lane_busy_s\":[{lanes}],\"max_busy_s\":{},\"mean_busy_s\":{},\
             \"imbalance\":{},\"idle_frac\":{},\"straggler\":{}}}",
            if i > 0 { ",\n" } else { "" },
            esc(&s.name),
            num(s.start),
            num(s.end),
            num(s.duration()),
            num(s.max_busy),
            num(s.mean_busy),
            num(s.imbalance),
            num(s.idle_frac),
            s.straggler
                .map(|t| t.to_string())
                .unwrap_or_else(|| "null".to_string()),
        );
    }
    out.push_str("\n],\n\"comm\":[\n");
    for (i, c) in a.comm.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"op\":\"{}\",\"track\":{},\"calls\":{},\"bytes\":{},\"time_s\":{}}}",
            if i > 0 { ",\n" } else { "" },
            esc(&c.op),
            c.track,
            c.calls,
            num(c.bytes),
            num(c.time),
        );
    }
    out.push_str("\n],\n\"scaling\":");
    match &a.scaling {
        Some(s) => {
            let _ = write!(
                out,
                "{{\"baseline_total_s\":{},\"total_s\":{},\"ranks\":{},\
                 \"speedup\":{},\"efficiency\":{},\"serial_fraction\":{}}}",
                num(s.baseline_total),
                num(s.total),
                s.ranks,
                num(s.speedup),
                num(s.efficiency),
                s.serial_fraction
                    .map(num)
                    .unwrap_or_else(|| "null".to_string()),
            );
        }
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

/// Parse an artifact produced by [`analysis_json`]. `None` when the text
/// is not JSON or not an analysis document.
pub fn parse_analysis(text: &str) -> Option<Analysis> {
    let v = crate::jsonio::parse(text)?;
    if v.str("schema") != Some(ANALYSIS_SCHEMA) {
        return None;
    }
    let mut a = Analysis {
        total: v.num("total_s")?,
        ..Analysis::default()
    };
    for s in v.get("critical_path")?.as_arr()? {
        a.critical_path.push(PathStep {
            name: s.str("name")?.to_string(),
            track: s.num("track")? as u32,
            start: s.num("start")?,
            end: s.num("end")?,
            contribution: s.num("contribution_s")?,
            slack: s.num("slack_s")?,
        });
    }
    for s in v.get("stages")?.as_arr()? {
        let mut lane_busy = Vec::new();
        for pair in s.get("lane_busy_s")?.as_arr()? {
            let p = pair.as_arr()?;
            lane_busy.push((p.first()?.as_f64()? as u32, p.get(1)?.as_f64()?));
        }
        a.stages.push(StageStats {
            name: s.str("name")?.to_string(),
            start: s.num("start")?,
            end: s.num("end")?,
            lane_busy,
            max_busy: s.num("max_busy_s")?,
            mean_busy: s.num("mean_busy_s")?,
            imbalance: s.num("imbalance")?,
            idle_frac: s.num("idle_frac")?,
            straggler: s.num("straggler").map(|t| t as u32),
        });
    }
    for c in v.get("comm")?.as_arr()? {
        a.comm.push(CommCell {
            op: c.str("op")?.to_string(),
            track: c.num("track")? as u32,
            calls: c.num("calls")? as u64,
            bytes: c.num("bytes")?,
            time: c.num("time_s")?,
        });
    }
    a.scaling = match v.get("scaling")? {
        crate::jsonio::Json::Null => None,
        s => Some(Scaling {
            baseline_total: s.num("baseline_total_s")?,
            total: s.num("total_s")?,
            ranks: s.num("ranks")? as usize,
            speedup: s.num("speedup")?,
            efficiency: s.num("efficiency")?,
            serial_fraction: s.num("serial_fraction"),
        }),
    };
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    /// Two serialized stages; stage two fans out to two rank lanes, rank
    /// on track 2 is the straggler with a nested chain.
    fn hybrid_trace() -> Trace {
        let tr = Tracer::new();
        tr.record(0, "stage", "Jellyfish", 0.0, 2.0);
        tr.record(0, "stage", "GraphFromFasta", 2.0, 10.0);
        tr.record(1, "work", "gff.total", 2.0, 7.0);
        tr.record(2, "work", "gff.total", 2.0, 9.0);
        tr.record(2, "work", "gff.loop1", 2.0, 8.0);
        tr.record(2, "work", "gff.weld", 3.0, 7.0);
        tr.record_with(
            1,
            "comm",
            "mpi.allgatherv",
            6.0,
            7.0,
            &[("bytes_sent", 100.0)],
        );
        tr.record_with(
            2,
            "comm",
            "mpi.allgatherv",
            8.0,
            9.0,
            &[("bytes_sent", 300.0)],
        );
        tr.take()
    }

    #[test]
    fn path_contributions_sum_to_total() {
        let a = analyze(&hybrid_trace());
        assert!((a.total - 10.0).abs() < 1e-9);
        assert!((a.path_total() - a.total).abs() < 1e-9, "{a:#?}");
    }

    #[test]
    fn path_descends_into_straggler_chain() {
        let a = analyze(&hybrid_trace());
        let names: Vec<(&str, u32)> = a
            .critical_path
            .iter()
            .map(|s| (s.name.as_str(), s.track))
            .collect();
        assert_eq!(
            names,
            vec![
                ("Jellyfish", 0),
                ("GraphFromFasta", 0),
                ("gff.total", 2),
                ("gff.loop1", 2),
                ("gff.weld", 2),
            ]
        );
        // Exclusive contributions: Jellyfish 2, stage remainder 8-7=1,
        // gff.total 7-6=1, loop1 6-4=2, weld 4.
        let contrib: Vec<f64> = a.critical_path.iter().map(|s| s.contribution).collect();
        assert_eq!(contrib, vec![2.0, 1.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn slack_capped_by_runner_up_gap() {
        let a = analyze(&hybrid_trace());
        // Straggler (track 2) busy 7s vs runner-up (track 1) 5s: fixing
        // the straggler chain can win at most 2s.
        let total_step = &a.critical_path[2];
        assert_eq!(total_step.name, "gff.total");
        assert!((total_step.slack - 2.0).abs() < 1e-9, "{total_step:?}");
        // Deeper steps inherit the cap.
        assert!(a.critical_path[3].slack <= total_step.slack + 1e-9);
        // Serialized stage spans have full-duration slack.
        assert_eq!(a.critical_path[0].slack, 2.0);
    }

    #[test]
    fn imbalance_and_straggler_reported() {
        let a = analyze(&hybrid_trace());
        let gff = &a.stages[1];
        assert_eq!(gff.straggler, Some(2));
        assert!((gff.max_busy - 7.0).abs() < 1e-9);
        assert!((gff.mean_busy - 6.0).abs() < 1e-9);
        assert!((gff.imbalance - 7.0 / 6.0).abs() < 1e-9);
        assert!((gff.idle_frac - (1.0 - 6.0 / 7.0)).abs() < 1e-9);
        // Jellyfish has no rank lanes: degenerate guards hold.
        let jf = &a.stages[0];
        assert_eq!(jf.straggler, None);
        assert_eq!(jf.imbalance, 1.0);
        assert_eq!(jf.idle_frac, 0.0);
    }

    #[test]
    fn comm_matrix_collects_bytes_and_time() {
        let a = analyze(&hybrid_trace());
        assert_eq!(a.comm.len(), 2);
        let c2 = a.comm.iter().find(|c| c.track == 2).unwrap();
        assert_eq!(c2.op, "mpi.allgatherv");
        assert_eq!(c2.calls, 1);
        assert_eq!(c2.bytes, 300.0);
        assert!((c2.time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_figures() {
        let a = analyze_vs(&hybrid_trace(), Some(30.0));
        let s = a.scaling.as_ref().unwrap();
        assert_eq!(s.ranks, 2);
        assert!((s.speedup - 3.0).abs() < 1e-9);
        assert!((s.efficiency - 1.5).abs() < 1e-9);
        let f = s.serial_fraction.unwrap();
        // Karp–Flatt: (1/3 - 1/2) / (1 - 1/2) < 0 -> clamped at 0.
        assert_eq!(f, 0.0);
    }

    #[test]
    fn degenerate_traces_are_finite() {
        for t in [
            Trace::default(),
            {
                let tr = Tracer::new();
                tr.record(0, "stage", "zero", 5.0, 5.0);
                tr.take()
            },
            {
                let tr = Tracer::new();
                tr.record(3, "work", "lonely", 0.0, 1.0); // no stage lane
                tr.take()
            },
        ] {
            let a = analyze_vs(&t, Some(0.0));
            let all_finite = a
                .critical_path
                .iter()
                .flat_map(|s| [s.start, s.end, s.contribution, s.slack])
                .chain(a.stages.iter().flat_map(|s| {
                    [
                        s.start,
                        s.end,
                        s.max_busy,
                        s.mean_busy,
                        s.imbalance,
                        s.idle_frac,
                    ]
                }))
                .chain([a.total])
                .all(f64::is_finite);
            assert!(all_finite, "{a:#?}");
            assert!(analysis_json(&a).len() > 2);
        }
    }

    #[test]
    fn uncategorized_trace_falls_back_to_roots() {
        let tr = Tracer::new();
        tr.record(0, "wall", "outer", 0.0, 4.0);
        tr.record(0, "wall", "inner", 1.0, 3.0);
        let a = analyze(&tr.take());
        assert_eq!(a.stages.len(), 1);
        assert_eq!(a.stages[0].name, "outer");
        // The chain descends within track 0's own tree only via lanes;
        // with no rank lanes the path is the root alone.
        assert_eq!(a.critical_path.len(), 1);
        assert!((a.path_total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tie_between_lanes_picks_lowest_track() {
        let tr = Tracer::new();
        tr.record(0, "stage", "S", 0.0, 4.0);
        tr.record(1, "w", "a", 0.0, 3.0);
        tr.record(2, "w", "b", 0.0, 3.0);
        let a = analyze(&tr.take());
        assert_eq!(a.stages[0].straggler, Some(1));
        // Perfectly balanced: straggler gap slack is 0.
        let lane_step = &a.critical_path[1];
        assert_eq!(lane_step.name, "a");
        assert_eq!(lane_step.slack, 0.0);
    }

    #[test]
    fn tie_between_siblings_picks_earliest() {
        let tr = Tracer::new();
        tr.record(0, "stage", "S", 0.0, 10.0);
        tr.record(1, "w", "root", 0.0, 10.0);
        tr.record(1, "w", "late", 6.0, 9.0);
        tr.record(1, "w", "beta", 1.0, 4.0);
        tr.record(1, "w", "alpha", 1.0, 4.0);
        let a = analyze(&tr.take());
        let names: Vec<&str> = a.critical_path.iter().map(|s| s.name.as_str()).collect();
        // "alpha" (recorded last over the identical [1,4) interval) wraps
        // "beta" in the tree; it ties with "late" on duration 3 but
        // starts earlier, so the chain is root -> alpha -> beta.
        assert_eq!(names, vec!["S", "root", "alpha", "beta"]);
        assert!((a.path_total() - 10.0).abs() < 1e-9);
        // alpha's time is fully covered by beta: zero exclusive share.
        assert_eq!(a.critical_path[2].contribution, 0.0);
    }

    #[test]
    fn partially_overlapping_siblings_stay_on_one_level() {
        // The PR 7 fix: [0,10] and [5,15] are siblings, not nested. The
        // chain picks the longer clipped one and contributions still sum.
        let tr = Tracer::new();
        tr.record(0, "stage", "S", 0.0, 15.0);
        tr.record(1, "w", "a", 0.0, 10.0);
        tr.record(1, "w", "b", 5.0, 15.0);
        let a = analyze(&tr.take());
        assert!((a.path_total() - 15.0).abs() < 1e-9);
        let names: Vec<&str> = a.critical_path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["S", "a"]); // tie on clipped 10 -> earlier start
    }

    #[test]
    fn json_round_trips() {
        let a = analyze_vs(&hybrid_trace(), Some(30.0));
        let text = analysis_json(&a);
        let back = parse_analysis(&text).expect("parses");
        assert_eq!(back, a);
        // And the degenerate analysis round-trips too.
        let empty = analyze(&Trace::default());
        assert_eq!(parse_analysis(&analysis_json(&empty)).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_non_analysis() {
        assert!(parse_analysis("{}").is_none());
        assert!(parse_analysis("not json").is_none());
        assert!(parse_analysis("{\"schema\":\"other/v1\"}").is_none());
    }
}

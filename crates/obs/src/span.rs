//! Span tracing: RAII wall-clock timers, explicit virtual-clock records,
//! and the [`Trace`] they accumulate into.
//!
//! A *span* is a named, categorized `[start, end)` interval on a *track*.
//! Tracks are small integers that map onto Chrome/Perfetto thread lanes:
//! the convention across this workspace is track `r` for MPI rank `r`
//! (track 0 doubles as the serial/pipeline lane) and
//! [`crate::THREAD_TRACK_BASE`]` + t` for OpenMP worker thread `t`.
//!
//! Two time sources coexist:
//!
//! * **wall time** — [`Tracer::span`] returns a RAII [`Span`] guard that
//!   measures real elapsed time against the tracer's epoch;
//! * **virtual time** — [`Tracer::record`] takes explicit start/end
//!   seconds, which is how the `mpisim` virtual clocks and the `omp`
//!   makespan replays report (the timebase of every figure in the paper).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span: a named interval on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"gff.loop1"` or `"mpi.allgatherv"`.
    pub name: String,
    /// Category: `"stage"`, `"compute"`, `"comm"`, `"io"`, `"omp"`, … —
    /// becomes the Chrome `cat` field, filterable in Perfetto.
    pub cat: String,
    /// Track (Chrome `tid`): rank id, or `THREAD_TRACK_BASE + thread`.
    pub track: u32,
    /// Start time, seconds (virtual or wall, per the recording call).
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Numeric attributes (bytes moved, items processed, …), exported as
    /// Chrome `args`.
    pub args: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Look up a numeric attribute by name.
    pub fn arg(&self, name: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

/// One sample of a named counter series (RAM, queue depth, …); exported as
/// a Chrome `ph:"C"` counter event.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter name.
    pub name: String,
    /// Track the sample belongs to.
    pub track: u32,
    /// Sample time, seconds.
    pub ts: f64,
    /// Sampled value.
    pub value: f64,
}

/// A finished trace: every recorded span and counter sample, plus optional
/// human-readable track names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// All counter samples, in recording order.
    pub counters: Vec<CounterSample>,
    /// Track id → display name (Chrome `thread_name` metadata).
    pub track_names: BTreeMap<u32, String>,
}

impl Trace {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Latest end time across all spans and samples (the trace horizon).
    pub fn total_time(&self) -> f64 {
        let span_max = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        let ctr_max = self.counters.iter().map(|c| c.ts).fold(0.0, f64::max);
        span_max.max(ctr_max)
    }

    /// Spans on `track`, in recording order.
    pub fn on_track(&self, track: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Spans whose category equals `cat`, in recording order.
    pub fn with_cat(&self, cat: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.cat == cat).collect()
    }

    /// Sum of durations of spans named exactly `name` on `track`.
    pub fn span_sum(&self, track: u32, name: &str) -> f64 {
        self.on_track(track)
            .filter(|s| s.name == name)
            .map(SpanRecord::duration)
            .sum()
    }

    /// `(start, end)` of the first span named `name` on `track`.
    pub fn span_bounds(&self, track: u32, name: &str) -> Option<(f64, f64)> {
        self.on_track(track)
            .find(|s| s.name == name)
            .map(|s| (s.start, s.end))
    }

    /// Maximum sampled value of counter `name` (any track), if sampled.
    pub fn max_counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Absorb `other`, shifting its times by `dt` seconds and its tracks by
    /// `track_offset`. Used to splice per-rank cluster traces (whose virtual
    /// clocks start at 0) into a pipeline-level timeline.
    pub fn merge_shifted(&mut self, other: Trace, dt: f64, track_offset: u32) {
        // Track ids saturate instead of wrapping: splicing a sub-trace that
        // already carries high thread-lane ids (`THREAD_TRACK_BASE + t`)
        // must never panic or alias low rank lanes.
        for mut s in other.spans {
            s.start += dt;
            s.end = (s.end + dt).max(s.start);
            s.track = s.track.saturating_add(track_offset);
            self.spans.push(s);
        }
        for mut c in other.counters {
            c.ts += dt;
            c.track = c.track.saturating_add(track_offset);
            self.counters.push(c);
        }
        for (t, n) in other.track_names {
            self.track_names
                .entry(t.saturating_add(track_offset))
                .or_insert(n);
        }
    }

    /// Build the nesting tree of one track's spans by interval containment:
    /// a span is a child of the tightest span that contains it. Spans are
    /// sorted by `(start asc, end desc)` so parents precede children; spans
    /// with *identical* intervals tie-break by recording order, later first
    /// — a wrapper span recorded just after the call it timed (e.g.
    /// `gff.comm1` around `mpi.allgatherv`) nests outside it.
    ///
    /// Partial overlap is **not** containment: a span that starts inside an
    /// open span but ends after it closes that span and becomes its sibling
    /// (or a new root). A span starting exactly at another's end is a
    /// sibling too; zero-duration spans nest inside whatever is open at
    /// their instant.
    pub fn tree(&self, track: u32) -> Vec<SpanNode> {
        let mut spans: Vec<(usize, &SpanRecord)> = self.on_track(track).enumerate().collect();
        spans.sort_by(|(ia, a), (ib, b)| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.end
                        .partial_cmp(&a.end)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(ib.cmp(ia))
        });
        let spans: Vec<&SpanRecord> = spans.into_iter().map(|(_, s)| s).collect();
        let mut roots: Vec<SpanNode> = Vec::new();
        let mut stack: Vec<SpanNode> = Vec::new();
        const EPS: f64 = 1e-12;
        for s in spans {
            let node = SpanNode {
                name: s.name.clone(),
                start: s.start,
                end: s.end,
                children: Vec::new(),
            };
            // Pop finished ancestors (spans that end at or before this
            // one's start) and partially-overlapped ones: if the top does
            // not contain this span's end, overlap is not containment —
            // the top closes and this span becomes its sibling.
            while let Some(top) = stack.last() {
                let finished = top.end <= s.start + EPS;
                let contains = s.end <= top.end + EPS;
                if finished || !contains {
                    let done = stack.pop().expect("non-empty");
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(done),
                        None => roots.push(done),
                    }
                } else {
                    break;
                }
            }
            stack.push(node);
        }
        while let Some(done) = stack.pop() {
            match stack.last_mut() {
                Some(parent) => parent.children.push(done),
                None => roots.push(done),
            }
        }
        roots
    }

    /// Render [`Trace::tree`] as indented text — one line per span, two
    /// spaces per nesting level. Stable and diff-friendly; used by the
    /// golden span-tree test.
    pub fn render_tree(&self, track: u32) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for n in nodes {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push_str(&n.name);
                out.push('\n');
                walk(&n.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.tree(track), 0, &mut out);
        out
    }
}

/// One node of a span nesting tree (see [`Trace::tree`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Spans nested inside this one.
    pub children: Vec<SpanNode>,
}

/// The span recorder. Cheap to clone; clones share storage. Thread-safe:
/// every simulated rank (an OS thread) can hold a clone and record
/// concurrently.
///
/// # Examples
///
/// ```
/// let tracer = obs::Tracer::new();
/// {
///     let _outer = tracer.span("outer");
///     let _inner = tracer.span("inner"); // drops first -> recorded first
/// }
/// tracer.record(0, "comm", "exchange", 1.0, 2.5); // explicit virtual time
/// let trace = tracer.take();
/// assert_eq!(trace.spans.len(), 3);
/// assert_eq!(trace.span_sum(0, "exchange"), 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<Trace>>,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(Trace::default())),
            epoch: Instant::now(),
        }
    }
}

impl Tracer {
    /// A fresh, empty tracer whose wall-clock epoch is "now".
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Seconds since the tracer's epoch (the wall-clock timebase of
    /// [`Span`] guards).
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Start a wall-clock RAII span on track 0, category `"wall"`. The
    /// interval is recorded when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span {
        self.span_on(0, "wall", name)
    }

    /// Start a wall-clock RAII span on an explicit track and category.
    pub fn span_on(&self, track: u32, cat: impl Into<String>, name: impl Into<String>) -> Span {
        Span {
            tracer: self.clone(),
            name: name.into(),
            cat: cat.into(),
            track,
            start: self.now(),
            args: Vec::new(),
        }
    }

    /// Record a span with explicit (virtual-clock) times.
    pub fn record(
        &self,
        track: u32,
        cat: impl Into<String>,
        name: impl Into<String>,
        start: f64,
        end: f64,
    ) {
        self.record_with(track, cat, name, start, end, &[]);
    }

    /// Record a span with explicit times and numeric attributes.
    pub fn record_with(
        &self,
        track: u32,
        cat: impl Into<String>,
        name: impl Into<String>,
        start: f64,
        end: f64,
        args: &[(&str, f64)],
    ) {
        let rec = SpanRecord {
            name: name.into(),
            cat: cat.into(),
            track,
            start,
            end: end.max(start),
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        };
        self.inner.lock().expect("tracer lock").spans.push(rec);
    }

    /// Record one sample of a counter series.
    pub fn counter(&self, track: u32, name: impl Into<String>, ts: f64, value: f64) {
        self.inner
            .lock()
            .expect("tracer lock")
            .counters
            .push(CounterSample {
                name: name.into(),
                track,
                ts,
                value,
            });
    }

    /// Give a track a human-readable name (Chrome `thread_name`).
    pub fn name_track(&self, track: u32, name: impl Into<String>) {
        self.inner
            .lock()
            .expect("tracer lock")
            .track_names
            .insert(track, name.into());
    }

    /// Clone the trace recorded so far without clearing it.
    pub fn snapshot(&self) -> Trace {
        self.inner.lock().expect("tracer lock").clone()
    }

    /// Drain the recorded trace, leaving the tracer empty (track names are
    /// drained too).
    pub fn take(&self) -> Trace {
        std::mem::take(&mut *self.inner.lock().expect("tracer lock"))
    }
}

/// A RAII wall-clock span: measures from creation to drop and records the
/// interval into its [`Tracer`]. Attach numeric attributes with
/// [`Span::arg`].
///
/// # Examples
///
/// ```
/// let tracer = obs::Tracer::new();
/// {
///     let _span = tracer.span("weld").arg("contigs", 42.0);
///     // ... timed work ...
/// }
/// let trace = tracer.take();
/// assert_eq!(trace.spans[0].name, "weld");
/// assert_eq!(trace.spans[0].arg("contigs"), Some(42.0));
/// assert!(trace.spans[0].duration() >= 0.0);
/// ```
#[must_use = "a Span records its interval when dropped; binding it to _ drops it immediately"]
pub struct Span {
    tracer: Tracer,
    name: String,
    cat: String,
    track: u32,
    start: f64,
    args: Vec<(String, f64)>,
}

impl Span {
    /// Attach a numeric attribute (builder-style).
    pub fn arg(mut self, name: impl Into<String>, value: f64) -> Self {
        self.args.push((name.into(), value));
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = self.tracer.now();
        let rec = SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            track: self.track,
            start: self.start,
            end: end.max(self.start),
            args: std::mem::take(&mut self.args),
        };
        self.tracer
            .inner
            .lock()
            .expect("tracer lock")
            .spans
            .push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raii_span_records_on_drop() {
        let tr = Tracer::new();
        {
            let _s = tr.span("a");
        }
        let t = tr.take();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "a");
        assert!(t.spans[0].end >= t.spans[0].start);
    }

    #[test]
    fn virtual_records_are_exact() {
        let tr = Tracer::new();
        tr.record(3, "comm", "x", 1.0, 4.0);
        let t = tr.snapshot();
        assert_eq!(t.span_sum(3, "x"), 3.0);
        assert_eq!(t.span_bounds(3, "x"), Some((1.0, 4.0)));
        assert_eq!(t.span_sum(0, "x"), 0.0);
    }

    #[test]
    fn end_clamped_to_start() {
        let tr = Tracer::new();
        tr.record(0, "c", "bad", 5.0, 2.0);
        assert_eq!(tr.snapshot().spans[0].duration(), 0.0);
    }

    #[test]
    fn merge_shifted_offsets_everything() {
        let mut a = Trace::default();
        let tr = Tracer::new();
        tr.record(0, "x", "child", 0.5, 1.0);
        tr.counter(0, "ram", 0.5, 7.0);
        tr.name_track(0, "rank 0");
        a.merge_shifted(tr.take(), 10.0, 2);
        assert_eq!(a.spans[0].start, 10.5);
        assert_eq!(a.spans[0].track, 2);
        assert_eq!(a.counters[0].ts, 10.5);
        assert_eq!(a.track_names.get(&2).map(String::as_str), Some("rank 0"));
    }

    #[test]
    fn merge_shifted_edge_cases() {
        // Empty trace: a no-op either way round.
        let mut a = Trace::default();
        a.merge_shifted(Trace::default(), 5.0, 3);
        assert!(a.is_empty());
        // All-zero-duration spans survive the shift with end == start.
        let tr = Tracer::new();
        tr.record(0, "s", "instant", 2.0, 2.0);
        a.merge_shifted(tr.take(), 1.0, 0);
        assert_eq!(a.spans[0].start, 3.0);
        assert_eq!(a.spans[0].end, 3.0);
        // Track offsets saturate instead of overflowing: splicing a trace
        // that already carries thread-lane ids must not panic or wrap
        // around into the rank lanes.
        let tr = Tracer::new();
        tr.record(u32::MAX - 1, "s", "deep", 0.0, 1.0);
        tr.counter(u32::MAX - 1, "c", 0.5, 1.0);
        tr.name_track(u32::MAX - 1, "deep lane");
        a.merge_shifted(tr.take(), 0.0, 10);
        assert_eq!(a.spans.last().unwrap().track, u32::MAX);
        assert_eq!(a.counters.last().unwrap().track, u32::MAX);
        assert!(a.track_names.contains_key(&u32::MAX));
    }

    #[test]
    fn tree_nests_by_containment() {
        let tr = Tracer::new();
        tr.record(0, "s", "total", 0.0, 10.0);
        tr.record(0, "s", "phase1", 0.0, 4.0);
        tr.record(0, "s", "phase1.sub", 1.0, 2.0);
        tr.record(0, "s", "phase2", 4.0, 10.0);
        let roots = tr.snapshot().tree(0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "total");
        assert_eq!(roots[0].children.len(), 2);
        assert_eq!(roots[0].children[0].name, "phase1");
        assert_eq!(roots[0].children[0].children[0].name, "phase1.sub");
        assert_eq!(roots[0].children[1].name, "phase2");
    }

    #[test]
    fn equal_intervals_nest_later_recorded_outside() {
        // An inner call records its span first; the wrapper that timed it
        // records second over the identical interval. The wrapper must be
        // the parent.
        let tr = Tracer::new();
        tr.record(0, "comm", "mpi.allgatherv", 1.0, 2.0);
        tr.record(0, "stage", "gff.comm1", 1.0, 2.0);
        let roots = tr.snapshot().tree(0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "gff.comm1");
        assert_eq!(roots[0].children[0].name, "mpi.allgatherv");
    }

    #[test]
    fn partial_overlap_is_sibling_not_child() {
        // Regression: [0,10] then [5,15] — the second span starts inside
        // the first but ends after it, so it must NOT be adopted as a
        // child; the first closes and both are roots.
        let tr = Tracer::new();
        tr.record(0, "s", "a", 0.0, 10.0);
        tr.record(0, "s", "b", 5.0, 15.0);
        let roots = tr.snapshot().tree(0);
        assert_eq!(roots.len(), 2, "overlapping spans are siblings: {roots:?}");
        assert_eq!(roots[0].name, "a");
        assert!(roots[0].children.is_empty());
        assert_eq!(roots[1].name, "b");
    }

    #[test]
    fn partial_overlap_inside_common_parent() {
        // Overlap below a containing ancestor: the overlapped span closes
        // onto the ancestor and the overlapping one becomes its sibling
        // *under* that ancestor.
        let tr = Tracer::new();
        tr.record(0, "s", "outer", 0.0, 100.0);
        tr.record(0, "s", "a", 0.0, 10.0);
        tr.record(0, "s", "b", 5.0, 15.0);
        let roots = tr.snapshot().tree(0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        let kids: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, vec!["a", "b"]);
        assert!(roots[0].children[0].children.is_empty());
    }

    #[test]
    fn exact_tie_spans_are_siblings() {
        // [0,5] then [5,10]: touching at one instant is not containment.
        let tr = Tracer::new();
        tr.record(0, "s", "first", 0.0, 5.0);
        tr.record(0, "s", "second", 5.0, 10.0);
        let roots = tr.snapshot().tree(0);
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().all(|r| r.children.is_empty()));
    }

    #[test]
    fn zero_duration_span_nests_at_its_instant() {
        let tr = Tracer::new();
        tr.record(0, "s", "outer", 0.0, 10.0);
        tr.record(0, "s", "marker", 4.0, 4.0); // instant inside outer
        tr.record(0, "s", "at_end", 10.0, 10.0); // instant at outer's end
        let roots = tr.snapshot().tree(0);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "outer");
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "marker");
        assert_eq!(roots[1].name, "at_end");
    }

    #[test]
    fn render_tree_is_indented() {
        let tr = Tracer::new();
        tr.record(0, "s", "a", 0.0, 2.0);
        tr.record(0, "s", "b", 0.5, 1.0);
        let text = tr.snapshot().render_tree(0);
        assert_eq!(text, "a\n  b\n");
    }

    #[test]
    fn counters_and_max() {
        let tr = Tracer::new();
        tr.counter(0, "ram", 0.0, 5.0);
        tr.counter(0, "ram", 1.0, 9.0);
        tr.counter(0, "other", 2.0, 100.0);
        let t = tr.take();
        assert_eq!(t.max_counter("ram"), Some(9.0));
        assert_eq!(t.max_counter("missing"), None);
        assert_eq!(t.total_time(), 2.0);
    }

    #[test]
    fn concurrent_recording() {
        let tr = Tracer::new();
        std::thread::scope(|s| {
            for r in 0..8u32 {
                let tr = tr.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tr.record(r, "t", format!("s{i}"), i as f64, i as f64 + 0.5);
                    }
                });
            }
        });
        assert_eq!(tr.take().spans.len(), 800);
    }
}

//! Post-hoc sampling profiler over a finished [`Trace`].
//!
//! Long stages (`gff.loop1`, `gff.loop2`, the `rtt.loop` chunks) record as
//! one opaque span each: a viewer shows *that* they ran, not how work
//! progressed inside them. A [`Sampler`] walks the open-span stack of a
//! track at a fixed period — midpoint sampling, so boundaries never
//! double-attribute — and turns the samples into [`CounterSample`] series
//! ([`Sampler::annotate`]): `profile.depth` (how deep the stack is at each
//! instant) plus one cumulative `profile.samples.<leaf>` staircase per leaf
//! frame, which Perfetto renders as a progress ramp under the span.
//!
//! The period is in *trace* time, so the same sampler serves wall-clock
//! traces and the virtual-clock traces the makespan replays produce.
//! [`Sampler::folded`] gives the classic sampled flamegraph fold
//! (period-weighted), which converges on [`crate::flame::collapsed`] as
//! the period shrinks.

use crate::span::{CounterSample, SpanNode, Trace};
use std::collections::BTreeMap;

/// One stack sample: the open-span path of a track at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct StackSample {
    /// Sample time, seconds.
    pub ts: f64,
    /// Open spans at `ts`, outermost first. Empty if nothing was open.
    pub frames: Vec<String>,
}

impl StackSample {
    /// The innermost open span at this instant, if any.
    pub fn leaf(&self) -> Option<&str> {
        self.frames.last().map(String::as_str)
    }
}

/// A fixed-period stack sampler over finished traces (see module docs).
///
/// # Examples
///
/// ```
/// let tr = obs::Tracer::new();
/// tr.record(0, "stage", "gff.total", 0.0, 8.0);
/// tr.record(0, "stage", "gff.loop1", 0.0, 6.0);
/// let trace = tr.take();
/// let samples = obs::Sampler::new(2.0).samples(&trace, 0);
/// // Midpoint samples at t = 1, 3, 5, 7.
/// assert_eq!(samples.len(), 4);
/// assert_eq!(samples[0].frames, vec!["gff.total", "gff.loop1"]);
/// assert_eq!(samples[3].frames, vec!["gff.total"]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    period: f64,
}

impl Sampler {
    /// A sampler with the given period (seconds of trace time). Periods
    /// that are zero, negative or non-finite fall back to 1.0.
    pub fn new(period: f64) -> Self {
        Sampler {
            period: if period.is_finite() && period > 0.0 {
                period
            } else {
                1.0
            },
        }
    }

    /// A sampler taking ~`n` samples across `trace`'s horizon (at least
    /// one). Convenient when the timebase's scale is not known up front.
    pub fn with_samples(trace: &Trace, n: usize) -> Self {
        let horizon = trace.total_time();
        Sampler::new(if horizon > 0.0 {
            horizon / n.max(1) as f64
        } else {
            1.0
        })
    }

    /// The sampling period, seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Walk `track`'s open-span stack at each midpoint instant
    /// `(i + 1/2) * period` up to the track's horizon. Instants where no
    /// span is open yield a sample with empty `frames` (idle), so sample
    /// counts are comparable across tracks.
    pub fn samples(&self, trace: &Trace, track: u32) -> Vec<StackSample> {
        // Non-finite ends (a NaN-poisoned clock) would make `ts >= horizon`
        // unreachable and loop forever — skip them when sizing the horizon.
        let horizon = trace
            .on_track(track)
            .map(|s| s.end)
            .filter(|e| e.is_finite())
            .fold(0.0_f64, f64::max);
        let tree = trace.tree(track);
        let mut out = Vec::new();
        let mut i = 0u64;
        loop {
            let ts = (i as f64 + 0.5) * self.period;
            if ts >= horizon {
                break;
            }
            let mut frames = Vec::new();
            descend(&tree, ts, &mut frames);
            out.push(StackSample { ts, frames });
            i += 1;
        }
        out
    }

    /// Period-weighted collapsed stacks from sampling `track` — the
    /// estimate a real interrupt-driven profiler would produce. Idle
    /// samples are dropped. Converges on [`crate::flame::collapsed`] as
    /// the period shrinks.
    pub fn folded(&self, trace: &Trace, track: u32) -> Vec<(String, f64)> {
        let mut acc: BTreeMap<String, f64> = BTreeMap::new();
        for s in self.samples(trace, track) {
            if s.frames.is_empty() {
                continue;
            }
            *acc.entry(s.frames.join(";")).or_insert(0.0) += self.period;
        }
        acc.into_iter().collect()
    }

    /// Sample `track` and append the result to `trace` as counter series:
    /// `profile.depth` (stack depth per instant) and one cumulative
    /// `profile.samples.<leaf>` series per leaf frame. Returns how many
    /// samples were taken.
    ///
    /// # Examples
    ///
    /// ```
    /// let tr = obs::Tracer::new();
    /// tr.record(0, "stage", "rtt.loop", 0.0, 4.0);
    /// let mut trace = tr.take();
    /// let n = obs::Sampler::new(1.0).annotate(&mut trace, 0);
    /// assert_eq!(n, 4);
    /// assert_eq!(trace.max_counter("profile.samples.rtt.loop"), Some(4.0));
    /// assert_eq!(trace.max_counter("profile.depth"), Some(1.0));
    /// ```
    pub fn annotate(&self, trace: &mut Trace, track: u32) -> usize {
        let samples = self.samples(trace, track);
        let mut cumulative: BTreeMap<String, u64> = BTreeMap::new();
        for s in &samples {
            trace.counters.push(CounterSample {
                name: "profile.depth".to_string(),
                track,
                ts: s.ts,
                value: s.frames.len() as f64,
            });
            if let Some(leaf) = s.leaf() {
                let c = cumulative.entry(leaf.to_string()).or_insert(0);
                *c += 1;
                trace.counters.push(CounterSample {
                    name: format!("profile.samples.{leaf}"),
                    track,
                    ts: s.ts,
                    value: *c as f64,
                });
            }
        }
        samples.len()
    }
}

/// Push the names of the nodes covering `ts` onto `frames`, outermost
/// first. Children are disjoint (see [`Trace::tree`]), so at most one
/// branch matches per level.
fn descend(nodes: &[SpanNode], ts: f64, frames: &mut Vec<String>) {
    for n in nodes {
        if n.start <= ts && ts < n.end {
            frames.push(n.name.clone());
            descend(&n.children, ts, frames);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn staged_trace() -> Trace {
        let tr = Tracer::new();
        tr.record(0, "stage", "total", 0.0, 10.0);
        tr.record(0, "stage", "loop1", 0.0, 6.0);
        tr.record(0, "stage", "loop2", 6.0, 9.0);
        tr.take()
    }

    #[test]
    fn midpoint_samples_attribute_phases() {
        let t = staged_trace();
        let samples = Sampler::new(1.0).samples(&t, 0);
        assert_eq!(samples.len(), 10);
        let leaves: Vec<&str> = samples.iter().filter_map(StackSample::leaf).collect();
        assert_eq!(leaves.iter().filter(|&&l| l == "loop1").count(), 6);
        assert_eq!(leaves.iter().filter(|&&l| l == "loop2").count(), 3);
        assert_eq!(leaves.iter().filter(|&&l| l == "total").count(), 1);
    }

    #[test]
    fn idle_gaps_sample_empty() {
        let tr = Tracer::new();
        tr.record(0, "s", "a", 0.0, 1.0);
        tr.record(0, "s", "b", 3.0, 4.0);
        let samples = Sampler::new(1.0).samples(&tr.take(), 0);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1].frames, Vec::<String>::new());
        assert_eq!(samples[2].frames, Vec::<String>::new());
        assert_eq!(samples[3].leaf(), Some("b"));
    }

    #[test]
    fn folded_converges_on_exact_fold() {
        let t = staged_trace();
        let exact = crate::flame::collapsed(&t, 0);
        let sampled = Sampler::new(0.01).folded(&t, 0);
        for (path, v) in &exact {
            let s = sampled
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            assert!((s - v).abs() <= 0.05, "{path}: sampled {s} vs exact {v}");
        }
    }

    #[test]
    fn annotate_emits_progress_staircase() {
        let mut t = staged_trace();
        let n = Sampler::new(1.0).annotate(&mut t, 0);
        assert_eq!(n, 10);
        let loop1: Vec<f64> = t
            .counters
            .iter()
            .filter(|c| c.name == "profile.samples.loop1")
            .map(|c| c.value)
            .collect();
        assert_eq!(loop1, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.max_counter("profile.depth"), Some(2.0));
    }

    #[test]
    fn degenerate_periods_are_clamped() {
        assert_eq!(Sampler::new(0.0).period(), 1.0);
        assert_eq!(Sampler::new(-3.0).period(), 1.0);
        assert_eq!(Sampler::new(f64::NAN).period(), 1.0);
        // Empty trace: no samples, no panic.
        assert!(Sampler::new(1.0).samples(&Trace::default(), 0).is_empty());
    }

    #[test]
    fn non_finite_span_ends_do_not_hang() {
        // Before the horizon guard these looped forever: `ts >= NaN` and
        // `ts >= inf` are both always false.
        for end in [f64::NAN, f64::INFINITY] {
            let tr = Tracer::new();
            tr.record(0, "s", "poisoned", 0.0, end);
            tr.record(0, "s", "ok", 0.0, 2.0);
            let samples = Sampler::new(1.0).samples(&tr.take(), 0);
            assert_eq!(samples.len(), 2, "end={end}");
        }
    }

    #[test]
    fn zero_duration_and_single_span_traces() {
        // All-zero spans: horizon equals the instant, no samples, no panic.
        let tr = Tracer::new();
        tr.record(0, "s", "instant", 5.0, 5.0);
        let t = tr.take();
        assert_eq!(Sampler::new(1.0).samples(&t, 0).len(), 5);
        assert!(Sampler::new(1.0).folded(&t, 0).is_empty());
        // One span, one rank: annotate emits a well-formed staircase.
        let tr = Tracer::new();
        tr.record(1, "s", "only", 0.0, 3.0);
        let mut t = tr.take();
        assert_eq!(Sampler::with_samples(&t, 3).annotate(&mut t, 1), 3);
        assert_eq!(t.max_counter("profile.samples.only"), Some(3.0));
    }

    #[test]
    fn with_samples_targets_count() {
        let t = staged_trace();
        let s = Sampler::with_samples(&t, 20);
        assert!((s.period() - 0.5).abs() < 1e-12);
        assert_eq!(s.samples(&t, 0).len(), 20);
    }
}

//! Run-to-run performance diffing with tolerance bands.
//!
//! [`diff`] compares two [`Analysis`] artifacts — a committed baseline and
//! the current run — span by span and classifies every timing delta as a
//! regression, an improvement, or noise. The pipeline mixes virtual-clock
//! stage models with real wall-clock sections, so raw equality is
//! meaningless: a delta only counts when it clears **both** bands of the
//! [`Tolerance`] (a relative ratio *and* an absolute floor, so a 2 ms
//! blip on a 5 ms span can never fail CI).
//!
//! The verdict is machine-readable ([`DiffReport::to_json`], schema
//! `trinity-diff/v1`, regressions as `{span, baseline_ms, current_ms,
//! ratio}`) and human-readable ([`DiffReport::render`], a table). The CI
//! perf-gate runs `trinity diff baseline/analysis.json current` and fails
//! the job when [`DiffReport::passed`] is false.
//!
//! [`diff_series`] is the underlying name→seconds comparator; the CLI
//! also feeds it `trinity-bench/v1` series so k-mer microbenchmarks ride
//! the same gate.

use crate::analyze::Analysis;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tolerance bands for [`diff`]. A delta is significant only when it
/// exceeds the relative band **and** the absolute band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band: `0.25` means ±25% is noise.
    pub rel: f64,
    /// Absolute band, seconds: deltas under this never count, however
    /// large the ratio (guards tiny spans against wall-clock jitter).
    pub abs_s: f64,
}

impl Default for Tolerance {
    /// The CI perf-gate default: 25% relative, 50 ms absolute floor.
    fn default() -> Self {
        Tolerance {
            rel: 0.25,
            abs_s: 0.05,
        }
    }
}

impl Tolerance {
    /// True when `current` regresses past both bands over `baseline`.
    pub fn is_regression(&self, baseline: f64, current: f64) -> bool {
        current > baseline * (1.0 + self.rel) && current > baseline + self.abs_s
    }

    /// True when `current` improves past both bands under `baseline`.
    pub fn is_improvement(&self, baseline: f64, current: f64) -> bool {
        current < baseline * (1.0 - self.rel) && current < baseline - self.abs_s
    }
}

/// One significant timing delta.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Series name (`"total"`, `"stage:GraphFromFasta"`,
    /// `"path:gff.weld"`, or a bench workload).
    pub span: String,
    /// Baseline value, seconds.
    pub baseline_s: f64,
    /// Current value, seconds.
    pub current_s: f64,
}

impl Delta {
    /// `current / baseline`; infinite baselines-of-zero map to `f64::INFINITY`.
    pub fn ratio(&self) -> f64 {
        if self.baseline_s > 0.0 {
            self.current_s / self.baseline_s
        } else if self.current_s > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// The verdict of one [`diff`] run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Series that got significantly slower, worst ratio first.
    pub regressions: Vec<Delta>,
    /// Series that got significantly faster, best ratio first.
    pub improvements: Vec<Delta>,
    /// Series present only in the current run.
    pub added: Vec<String>,
    /// Series present only in the baseline.
    pub removed: Vec<String>,
}

impl DiffReport {
    /// True when nothing regressed (added/removed series are informational).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Machine-readable verdict, schema `trinity-diff/v1`.
    pub fn to_json(&self) -> String {
        let esc = crate::export::esc;
        let num = crate::export::num;
        let section = |deltas: &[Delta]| {
            let mut out = String::new();
            for (i, d) in deltas.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"span\":\"{}\",\"baseline_ms\":{},\"current_ms\":{},\"ratio\":{}}}",
                    if i > 0 { ",\n" } else { "" },
                    esc(&d.span),
                    num(d.baseline_s * 1e3),
                    num(d.current_s * 1e3),
                    num(d.ratio()),
                );
            }
            out
        };
        let names = |ns: &[String]| {
            ns.iter()
                .map(|n| format!("\"{}\"", esc(n)))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\n\"schema\":\"trinity-diff/v1\",\n\"passed\":{},\n\
             \"regressions\":[\n{}\n],\n\"improvements\":[\n{}\n],\n\
             \"added\":[{}],\n\"removed\":[{}]\n}}\n",
            self.passed(),
            section(&self.regressions),
            section(&self.improvements),
            names(&self.added),
            names(&self.removed),
        )
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let row = |out: &mut String, tag: &str, d: &Delta| {
            let _ = writeln!(
                out,
                "  {tag:<10} {:<40} {:>10.1} ms -> {:>10.1} ms   ({:.2}x)",
                d.span,
                d.baseline_s * 1e3,
                d.current_s * 1e3,
                d.ratio(),
            );
        };
        if self.regressions.is_empty() && self.improvements.is_empty() {
            out.push_str("no significant timing changes\n");
        }
        for d in &self.regressions {
            row(&mut out, "REGRESSED", d);
        }
        for d in &self.improvements {
            row(&mut out, "improved", d);
        }
        for n in &self.added {
            let _ = writeln!(out, "  added      {n}");
        }
        for n in &self.removed {
            let _ = writeln!(out, "  removed    {n}");
        }
        out
    }
}

/// Compare two name→seconds series under `tol`. The workhorse behind
/// [`diff`]; also used directly for `trinity-bench/v1` series.
pub fn diff_series(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    tol: Tolerance,
) -> DiffReport {
    let mut report = DiffReport::default();
    for (name, &base) in baseline {
        match current.get(name) {
            None => report.removed.push(name.clone()),
            Some(&cur) => {
                let d = Delta {
                    span: name.clone(),
                    baseline_s: base,
                    current_s: cur,
                };
                if tol.is_regression(base, cur) {
                    report.regressions.push(d);
                } else if tol.is_improvement(base, cur) {
                    report.improvements.push(d);
                }
            }
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            report.added.push(name.clone());
        }
    }
    report
        .regressions
        .sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
    report
        .improvements
        .sort_by(|a, b| a.ratio().total_cmp(&b.ratio()));
    report
}

/// The timing series [`diff`] extracts from an [`Analysis`]: the `total`,
/// each stage's duration (`stage:<name>`) and each critical-path step's
/// exclusive contribution aggregated by name (`path:<name>` — a step can
/// recur across stages).
pub fn analysis_series(a: &Analysis) -> BTreeMap<String, f64> {
    let mut series = BTreeMap::new();
    series.insert("total".to_string(), a.total);
    for s in &a.stages {
        series.insert(format!("stage:{}", s.name), s.duration());
    }
    for step in &a.critical_path {
        *series.entry(format!("path:{}", step.name)).or_insert(0.0) += step.contribution;
    }
    series
}

/// Diff two analyses under `tol`. See the module docs for semantics.
pub fn diff(baseline: &Analysis, current: &Analysis, tol: Tolerance) -> DiffReport {
    diff_series(&analysis_series(baseline), &analysis_series(current), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::span::Tracer;

    fn trace(gff_end: f64) -> crate::span::Trace {
        let tr = Tracer::new();
        tr.record(0, "stage", "Jellyfish", 0.0, 2.0);
        tr.record(0, "stage", "GraphFromFasta", 2.0, gff_end);
        tr.record(1, "work", "gff.total", 2.0, gff_end - 1.0);
        tr.take()
    }

    #[test]
    fn identical_runs_pass() {
        let a = analyze(&trace(10.0));
        let r = diff(&a, &a, Tolerance::default());
        assert!(r.passed());
        assert!(r.regressions.is_empty() && r.improvements.is_empty());
        assert!(r.added.is_empty() && r.removed.is_empty());
    }

    #[test]
    fn injected_regression_is_flagged_exactly() {
        let base = analyze(&trace(10.0));
        let cur = analyze(&trace(16.0)); // GFF 8s -> 14s, well past 25%
        let r = diff(&base, &cur, Tolerance::default());
        assert!(!r.passed());
        let spans: Vec<&str> = r.regressions.iter().map(|d| d.span.as_str()).collect();
        // The stage, its path steps and the total regress; Jellyfish must not.
        assert!(spans.contains(&"stage:GraphFromFasta"), "{spans:?}");
        assert!(spans.contains(&"total"));
        assert!(!spans.iter().any(|s| s.contains("Jellyfish")), "{spans:?}");
        // Worst ratio sorts first.
        let ratios: Vec<f64> = r.regressions.iter().map(Delta::ratio).collect();
        assert!(ratios.windows(2).all(|w| w[0] >= w[1]), "{ratios:?}");
    }

    #[test]
    fn improvement_is_not_a_failure() {
        let base = analyze(&trace(16.0));
        let cur = analyze(&trace(10.0));
        let r = diff(&base, &cur, Tolerance::default());
        assert!(r.passed());
        assert!(!r.improvements.is_empty());
    }

    #[test]
    fn within_band_noise_is_ignored() {
        let base = analyze(&trace(10.0));
        let cur = analyze(&trace(11.0)); // GFF 8s -> 9s = +12.5% < 25%
        let r = diff(&base, &cur, Tolerance::default());
        assert!(r.passed());
        assert!(r.improvements.is_empty());
    }

    #[test]
    fn absolute_floor_guards_tiny_spans() {
        let mut base = BTreeMap::new();
        base.insert("blip".to_string(), 0.001);
        let mut cur = BTreeMap::new();
        cur.insert("blip".to_string(), 0.010); // 10x but only +9ms
        let r = diff_series(&base, &cur, Tolerance::default());
        assert!(r.passed(), "{r:?}");
        // Without the floor the same delta fails.
        let r = diff_series(
            &base,
            &cur,
            Tolerance {
                rel: 0.25,
                abs_s: 0.0,
            },
        );
        assert!(!r.passed());
        assert_eq!(r.regressions[0].span, "blip");
    }

    #[test]
    fn added_and_removed_series_are_informational() {
        let mut base = BTreeMap::new();
        base.insert("old".to_string(), 1.0);
        let mut cur = BTreeMap::new();
        cur.insert("new".to_string(), 1.0);
        let r = diff_series(&base, &cur, Tolerance::default());
        assert!(r.passed());
        assert_eq!(r.added, vec!["new"]);
        assert_eq!(r.removed, vec!["old"]);
    }

    #[test]
    fn zero_baseline_is_finite() {
        let mut base = BTreeMap::new();
        base.insert("from_zero".to_string(), 0.0);
        let mut cur = BTreeMap::new();
        cur.insert("from_zero".to_string(), 1.0);
        let r = diff_series(&base, &cur, Tolerance::default());
        assert!(!r.passed());
        assert!(r.regressions[0].ratio().is_infinite());
        // JSON stays strict (non-finite ratio prints as 0).
        let json = r.to_json();
        assert!(crate::jsonio::parse(&json).is_some(), "{json}");
    }

    #[test]
    fn json_verdict_schema() {
        let base = analyze(&trace(10.0));
        let cur = analyze(&trace(16.0));
        let r = diff(&base, &cur, Tolerance::default());
        let v = crate::jsonio::parse(&r.to_json()).expect("valid json");
        assert_eq!(v.str("schema"), Some("trinity-diff/v1"));
        assert_eq!(v.get("passed"), Some(&crate::jsonio::Json::Bool(false)));
        let regs = v.get("regressions").unwrap().as_arr().unwrap();
        assert!(!regs.is_empty());
        for d in regs {
            assert!(d.str("span").is_some());
            assert!(d.num("baseline_ms").is_some());
            assert!(d.num("current_ms").is_some());
            assert!(d.num("ratio").is_some());
        }
    }

    #[test]
    fn render_mentions_every_delta() {
        let base = analyze(&trace(10.0));
        let cur = analyze(&trace(16.0));
        let r = diff(&base, &cur, Tolerance::default());
        let table = r.render();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("stage:GraphFromFasta"));
        let clean = diff(&base, &base, Tolerance::default());
        assert!(clean.render().contains("no significant timing changes"));
    }
}

//! Minimal JSON reader for round-tripping the crate's own artifacts.
//!
//! The exporters in [`crate::export`] and [`mod@crate::analyze`] hand-roll
//! strict JSON; the analytics CLI (`trinity analyze` / `trinity diff`)
//! needs to load those files back without pulling a serde dependency into
//! the zero-dep obs crate. [`parse`] is a small recursive-descent parser
//! over the full JSON grammar, returning a [`Json`] value tree with the
//! handful of accessors the analytics layer needs. It accepts any strict
//! JSON document (object key order is preserved), not just our own output.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys are kept as-is;
    /// [`Json::get`] returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)?.as_f64()`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// Convenience: `self.get(key)?.as_str()`.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

/// Parse one JSON document. Returns `None` on any syntax error or
/// trailing garbage.
///
/// # Examples
///
/// ```
/// let v = obs::jsonio::parse(r#"{"total": 1.5, "names": ["a", "b"]}"#).unwrap();
/// assert_eq!(v.num("total"), Some(1.5));
/// assert_eq!(v.get("names").unwrap().as_arr().unwrap().len(), 2);
/// ```
pub fn parse(s: &str) -> Option<Json> {
    let b = s.as_bytes();
    let (v, i) = value(b, 0)?;
    (skip_ws(b, i) == b.len()).then_some(v)
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize) -> Option<(Json, usize)> {
    let i = skip_ws(b, i);
    match b.get(i)? {
        b'{' => {
            let mut fields = Vec::new();
            let mut i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b'}') {
                return Some((Json::Obj(fields), i + 1));
            }
            loop {
                let (key, j) = string(b, skip_ws(b, i))?;
                let j = skip_ws(b, j);
                if b.get(j) != Some(&b':') {
                    return None;
                }
                let (val, j) = value(b, j + 1)?;
                fields.push((key, val));
                i = skip_ws(b, j);
                match b.get(i)? {
                    b',' => i += 1,
                    b'}' => return Some((Json::Obj(fields), i + 1)),
                    _ => return None,
                }
            }
        }
        b'[' => {
            let mut items = Vec::new();
            let mut i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b']') {
                return Some((Json::Arr(items), i + 1));
            }
            loop {
                let (val, j) = value(b, i)?;
                items.push(val);
                i = skip_ws(b, j);
                match b.get(i)? {
                    b',' => i += 1,
                    b']' => return Some((Json::Arr(items), i + 1)),
                    _ => return None,
                }
            }
        }
        b'"' => {
            let (s, i) = string(b, i)?;
            Some((Json::Str(s), i))
        }
        b't' => b[i..]
            .starts_with(b"true")
            .then(|| (Json::Bool(true), i + 4)),
        b'f' => b[i..]
            .starts_with(b"false")
            .then(|| (Json::Bool(false), i + 5)),
        b'n' => b[i..].starts_with(b"null").then(|| (Json::Null, i + 4)),
        _ => number(b, i),
    }
}

fn string(b: &[u8], mut i: usize) -> Option<(String, usize)> {
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        match *b.get(i)? {
            b'"' => {
                return Some((String::from_utf8(out).ok()?, i + 1));
            }
            b'\\' => {
                i += 1;
                match *b.get(i)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(i + 1..i + 5)?).ok()?;
                        let cp = u32::from_str_radix(hex, 16).ok()?;
                        // Surrogate pairs are not produced by our exporters;
                        // map lone surrogates to the replacement character.
                        let c = char::from_u32(cp).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        i += 4;
                    }
                    _ => return None,
                }
                i += 1;
            }
            c if c < 0x20 => return None,
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
}

fn number(b: &[u8], i: usize) -> Option<(Json, usize)> {
    let start = i;
    let mut j = i;
    if b.get(j) == Some(&b'-') {
        j += 1;
    }
    let digits = |b: &[u8], mut j: usize| {
        let s = j;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
        (j > s).then_some(j)
    };
    j = digits(b, j)?;
    if b.get(j) == Some(&b'.') {
        j = digits(b, j + 1)?;
    }
    if matches!(b.get(j), Some(&b'e') | Some(&b'E')) {
        j += 1;
        if matches!(b.get(j), Some(&b'+') | Some(&b'-')) {
            j += 1;
        }
        j = digits(b, j)?;
    }
    let v: f64 = std::str::from_utf8(&b[start..j]).ok()?.parse().ok()?;
    Some((Json::Num(v), j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Some(Json::Null));
        assert_eq!(parse("true"), Some(Json::Bool(true)));
        assert_eq!(parse("-2.5e3"), Some(Json::Num(-2500.0)));
        assert_eq!(parse("\"hi\""), Some(Json::Str("hi".into())));
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].str("b"), Some("x"));
        assert_eq!(v.get("c").unwrap().as_obj().unwrap().len(), 0);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_resolve() {
        let v = parse(r#""q\"w\\x\n\u0041\u001f""#).unwrap();
        assert_eq!(v.as_str(), Some("q\"w\\x\nA\u{1f}"));
    }

    #[test]
    fn garbage_rejected() {
        for bad in [
            "{\"a\":}",
            "[1,]",
            "{\"a\":1",
            "nope",
            "1 2",
            "\"unterminated",
        ] {
            assert_eq!(parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn own_exporters_round_trip() {
        let tr = crate::Tracer::new();
        tr.name_track(0, "rank \"0\"\n");
        tr.record_with(0, "stage", "weird\\name", 0.0, 1.5, &[("bytes", 7.0)]);
        let text = crate::export::trace_json(&tr.take());
        let v = parse(&text).expect("trace_json parses");
        let spans = v.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].str("name"), Some("weird\\name"));
        assert_eq!(spans[0].get("args").unwrap().num("bytes"), Some(7.0));
    }
}

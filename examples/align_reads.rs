//! Aligner demo: use the Bowtie substrate directly.
//!
//! ```text
//! cargo run --release -p trinity --example align_reads
//! ```
//!
//! Builds an FM-index over a few contigs, aligns reads (exact and with
//! mismatches, both strands) and prints the SAM lines — the per-rank step
//! of the paper's distributed Bowtie.

use bowtie::align::{align_read, AlignConfig};
use bowtie::fmindex::FmIndex;
use bowtie::sam::SamRecord;
use seqio::alphabet::revcomp;
use seqio::fasta::Record;

fn main() {
    let contigs = vec![
        Record::new(
            "contig_0",
            b"CGAGTCGGTTATCTTCGGATACTGTATAGTCCCACCTGGT".to_vec(),
        ),
        Record::new(
            "contig_1",
            b"AAAGCGGCACTTGTGAAGTGTTCCCCACGCCGCTTGGGTC".to_vec(),
        ),
        Record::new(
            "contig_2",
            b"CCATACCAAGAGGTAGTAGTCTCAGAATCTTGCGGGTACA".to_vec(),
        ),
    ];
    let index = FmIndex::build(&contigs);
    println!(
        "indexed {} contigs, {} bases\n",
        index.contig_count(),
        index.total_bases()
    );

    // Reads: exact, reverse-complement, one mismatch, and junk.
    let mut mism = contigs[1].seq[4..24].to_vec();
    mism[10] = b'T';
    let reads = vec![
        Record::new("exact/1", contigs[0].seq[..20].to_vec()),
        Record::new("revcomp/1", revcomp(&contigs[2].seq[10..30])),
        Record::new("mismatch/1", mism),
        Record::new("junk/1", b"TTTTTTTTTTTTTTTTTTTT".to_vec()),
    ];

    let cfg = AlignConfig {
        max_mismatches: 1,
        ..AlignConfig::default()
    };
    for read in &reads {
        let hits = align_read(&index, &read.seq, cfg);
        if hits.is_empty() {
            println!("{}", SamRecord::unmapped(&read.id).to_line());
        }
        for h in hits {
            let rec = SamRecord::from_alignment(&read.id, index.contig_name(h.contig), &h);
            println!("{}", rec.to_line());
        }
    }
}

//! Validation demo: compare hybrid-parallel output against the original
//! layout, the way §IV of the paper does.
//!
//! ```text
//! cargo run --release -p trinity --example validate_assembly
//! ```
//!
//! Runs the pipeline twice (serial and 4-rank hybrid), aligns the two
//! transcript sets all-to-all with Smith–Waterman, and counts full-length
//! reconstructions against the simulated ground truth.

use align::validate::{
    all_to_all_categories, count_full_length, count_fusions, FullLengthCriteria, RefTranscript,
};
use mpisim::NetModel;
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::{run_pipeline, PipelineConfig, PipelineMode};

fn main() {
    let dataset = Dataset::generate(DatasetPreset::Tiny, 3);
    let reads = dataset.all_reads();
    println!(
        "dataset: {} reads, {} reference isoforms",
        reads.len(),
        dataset.reference.len()
    );

    let mut serial_cfg = PipelineConfig::small(12);
    serial_cfg.mode = PipelineMode::Serial;
    let original = run_pipeline(&reads, &serial_cfg);

    let mut hybrid_cfg = PipelineConfig::small(12);
    hybrid_cfg.mode = PipelineMode::Hybrid {
        ranks: 4,
        net: NetModel::idataplex(),
    };
    let parallel = run_pipeline(&reads, &hybrid_cfg);

    println!(
        "transcripts: original {}, parallel {}",
        original.transcripts.len(),
        parallel.transcripts.len()
    );

    // Fig. 4-style all-to-all categories.
    let criteria = FullLengthCriteria::default();
    let cats = all_to_all_categories(&parallel.transcripts, &original.transcripts, criteria);
    println!(
        "\nparallel vs original (SW all-to-all): \
         identical-full {} | full {} | partial {} | unaligned {}",
        cats.identical_full, cats.full, cats.partial, cats.unaligned
    );

    // Fig. 5/6-style reference counting.
    let refs: Vec<RefTranscript> = dataset
        .reference
        .iter()
        .map(|r| RefTranscript {
            gene: r.gene.clone(),
            isoform: r.isoform.clone(),
            seq: r.seq.clone(),
        })
        .collect();
    for (label, out) in [("original", &original), ("parallel", &parallel)] {
        let fl = count_full_length(&out.transcripts, &refs, criteria);
        let fu = count_fusions(&out.transcripts, &refs, criteria);
        println!(
            "{label:>9}: full-length genes {} / isoforms {} | fused transcripts {}",
            fl.genes, fl.isoforms, fu.fused_transcripts
        );
    }
    println!("\n(the paper finds no significant difference between the versions)");
}

//! Quickstart: assemble a small synthetic RNA-seq dataset end to end.
//!
//! ```text
//! cargo run --release -p trinity --example quickstart
//! ```
//!
//! Generates a tiny transcriptome + reads, runs the full pipeline
//! (Jellyfish → Inchworm → Chrysalis → Butterfly) in the original
//! single-node layout, and prints the stage trace plus assembly stats.

use seqio::stats::length_stats;
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::{run_pipeline, PipelineConfig};
use trinity::report::{render_bars, render_trace};

fn main() {
    let dataset = Dataset::generate(DatasetPreset::Tiny, 42);
    let reads = dataset.all_reads();
    println!(
        "dataset: {} reads over {} reference isoforms\n",
        reads.len(),
        dataset.reference.len()
    );

    let cfg = PipelineConfig::small(12);
    let out = run_pipeline(&reads, &cfg);

    println!("stage trace:");
    print!("{}", render_trace(&out.trace));
    println!();
    print!("{}", render_bars(&out.trace, 40));

    let contig_stats = length_stats(out.contigs.iter().map(|c| c.seq.len()));
    let tx_stats = length_stats(out.transcripts.iter().map(|t| t.seq.len()));
    println!(
        "\ninchworm contigs : {} (N50 {} bp, max {} bp)",
        contig_stats.count, contig_stats.n50, contig_stats.max
    );
    println!("components       : {}", out.components.len());
    println!(
        "transcripts      : {} (N50 {} bp, max {} bp)",
        tx_stats.count, tx_stats.n50, tx_stats.max
    );
    println!("reads assigned   : {}", out.assignments.len());

    // How many ground-truth isoforms were reconstructed exactly?
    let exact = dataset
        .reference
        .iter()
        .filter(|r| {
            out.transcripts
                .iter()
                .any(|t| t.seq == r.seq || t.seq == seqio::alphabet::revcomp(&r.seq))
        })
        .count();
    println!(
        "exact reference reconstructions: {}/{}",
        exact,
        dataset.reference.len()
    );
}

//! Hybrid scaling demo: run the MPI+OpenMP GraphFromFasta at several
//! simulated node counts and print the strong-scaling table.
//!
//! ```text
//! cargo run --release -p trinity --example hybrid_scaling
//! ```
//!
//! This is the paper's core experiment (Fig. 7) at demo scale: watch the
//! loop times shrink with nodes while the non-parallel share grows.

use std::sync::Arc;

use chrysalis::graph_from_fasta::{gff_hybrid, gff_shared_memory, GffShared};
use chrysalis::timings::PhaseSpread;
use inchworm::assemble::assemble;
use inchworm::dictionary::Dictionary;
use kcount::counter::{count_kmers, CounterConfig};
use mpisim::{run_cluster, NetModel};
use simulate::datasets::{Dataset, DatasetPreset};
use trinity::pipeline::PipelineConfig;

fn main() {
    // A scaled-down sugarbeet-like workload: heavy contig-length skew.
    let dataset = Dataset::generate(DatasetPreset::WhiteflyLike, 7);
    let reads = dataset.all_reads();
    let cfg = PipelineConfig::small(16);

    // Jellyfish + Inchworm once.
    let counts = count_kmers(&reads, CounterConfig::new(cfg.chrysalis.k));
    let dict = Dictionary::from_counts(counts.clone(), 1);
    let contigs: Vec<_> = assemble(&dict, cfg.inchworm)
        .iter()
        .map(|c| c.to_record())
        .collect();
    println!(
        "workload: {} reads -> {} contigs\n",
        reads.len(),
        contigs.len()
    );

    let shared = Arc::new(GffShared::prepare(
        seqio::packed::encode_all(&contigs),
        counts,
        cfg.chrysalis,
    ));
    let baseline = gff_shared_memory(&shared).timings;
    println!(
        "baseline (1 node x {} threads): total {:.4}s (loop1 {:.4}s, loop2 {:.4}s)\n",
        cfg.chrysalis.threads, baseline.total, baseline.loop1, baseline.loop2
    );

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9}",
        "nodes", "loop1 max(s)", "loop2 max(s)", "total(s)", "speedup"
    );
    for ranks in [2usize, 4, 8, 16, 32] {
        let sh = Arc::clone(&shared);
        let outs = run_cluster(ranks, NetModel::idataplex(), move |comm| {
            gff_hybrid(comm, &sh).timings
        });
        let t: Vec<_> = outs.iter().map(|o| o.value).collect();
        let total = PhaseSpread::over(&t, |x| x.total).max;
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>8.2}x",
            ranks,
            PhaseSpread::over(&t, |x| x.loop1).max,
            PhaseSpread::over(&t, |x| x.loop2).max,
            total,
            baseline.total / total
        );
    }
    println!("\n(the paper reaches 20.7x at 192 nodes on the full sugarbeet dataset)");
}
